// Package repro is a reproduction of "Lazy Repair for Addition of
// Fault-Tolerance to Distributed Programs" (Roohitavaf, Lin, Kulkarni,
// IPPS 2016): a symbolic model-repair toolkit that revises fault-intolerant
// distributed programs into masking fault-tolerant ones while respecting the
// read/write realizability constraints of distributed computation.
//
// The public API wraps the internal engine:
//
//   - Define a distributed program (variables, processes with read/write
//     restrictions and guarded-command actions, fault actions, invariant,
//     safety specification) with the Def / Process / Action types and the
//     expression constructors re-exported from internal/expr.
//   - Repair it with Repair, the single entry point: the algorithm (LazyAlg,
//     the paper's two-step Algorithm 1, or CautiousAlg, the prior tool's
//     baseline), worker budget, timeout, and logging are functional options.
//   - Verify the output independently against the paper's definitions.
//
// See examples/ for runnable programs and DESIGN.md for the architecture.
package repro

import (
	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/parse"
	"repro/internal/program"
	"repro/internal/repair"
	"repro/internal/symbolic"
	"repro/internal/verify"
	"repro/internal/witness"
)

// Expr is a boolean expression over the program's variables, used for
// guards, invariants, and safety specifications.
type Expr = expr.Expr

// Expression constructors, re-exported from the expression language.
var (
	// True and False are the constant expressions.
	True, False = expr.True, expr.False
	// Eq returns "name = val"; Ne its negation.
	Eq, Ne = expr.Eq, expr.Ne
	// EqVar returns "a = b" over two variables; NeVar its negation.
	EqVar, NeVar = expr.EqVar, expr.NeVar
	// Lt returns "name < val".
	Lt = expr.Lt
	// NextEq returns "name' = val"; NextEqVar returns "a' = b".
	NextEq, NextEqVar = expr.NextEq, expr.NextEqVar
	// Changed returns "name' ≠ name"; Unchanged its negation.
	Changed, Unchanged = expr.Changed, expr.Unchanged
	// And, Or, Not and Implies are the boolean connectives.
	And, Or, Not, Implies = expr.And, expr.Or, expr.Not, expr.Implies
)

// Re-exported model-definition types.
type (
	// Def is a complete repair-problem instance: a distributed program,
	// its faults, its invariant, and its safety specification.
	Def = program.Def
	// Process declares one process with read/write restrictions and actions.
	Process = program.Process
	// Action is a guarded command.
	Action = program.Action
	// Update is one assignment performed by an Action.
	Update = program.Update
	// VarSpec declares a finite-domain variable.
	VarSpec = symbolic.VarSpec
	// Compiled is the symbolic (BDD) form of a Def.
	Compiled = program.Compiled

	// Options tune the repair algorithms.
	Options = repair.Options
	// Result is a synthesized masking fault-tolerant program.
	Result = repair.Result
	// Stats reports where the synthesis time went (the paper's table columns).
	Stats = repair.Stats
	// Report is the verifier's outcome.
	Report = verify.Report
	// Backend selects the verification engine (see EngineConfig.Backend).
	Backend = verify.Backend
	// Trace is a concrete replayable witness: a recovery demonstration in
	// Result.Witnesses (see WithWitnesses) or a failure trace attached to a
	// verifier check.
	Trace = witness.Trace
	// DeadlockError decorates ErrNoConvergence with a certified trace to a
	// deadlock state the repair could not eliminate (use errors.As).
	DeadlockError = repair.DeadlockError
	// BudgetError reports that a synthesis exceeded the node budget set with
	// EngineConfig.NodeBudget (use errors.As).
	BudgetError = bdd.BudgetError
)

// Update constructors, re-exported.
var (
	// Set returns the update v := val.
	Set = program.Set
	// Copy returns the update v := from.
	Copy = program.Copy
	// Choose returns the nondeterministic update v := one of the given values.
	Choose = program.Choose
)

// The verification backends (see EngineConfig.Backend).
const (
	// BackendBDD verifies with exact reachability fixpoints on the BDD
	// engine. The default.
	BackendBDD = verify.BackendBDD
	// BackendSAT verifies the reachability-shaped checks by bounded model
	// checking over the built-in CDCL solver.
	BackendSAT = verify.BackendSAT
)

// Repair errors, re-exported.
var (
	// ErrNotRepairable reports that no masking fault-tolerant program exists
	// under the algorithm's heuristics.
	ErrNotRepairable = repair.ErrNotRepairable
	// ErrNoConvergence reports that the outer repair loop hit its bound.
	ErrNoConvergence = repair.ErrNoConvergence
)

// DefaultOptions returns the configuration used in the paper's headline
// experiments.
func DefaultOptions() Options { return repair.DefaultOptions() }

// Certify replays a witness trace step-by-step against the compiled program,
// independently of the symbolic fixpoints that produced it: every step must
// be a program transition of trans or a fault transition, and the trace's
// claim (safety violation, deadlock, livelock, recovery, unrealizability)
// must actually hold relative to inv. A nil return makes the trace a
// certificate.
func Certify(c *Compiled, trans, inv bdd.Node, tr *Trace) error {
	return witness.Certify(c, trans, inv, tr)
}

// ParseProgram reads a repair-problem definition from the declarative text
// format (see internal/parse for the grammar and cmd/ftrepair -file for CLI
// use).
func ParseProgram(src string) (*Def, error) { return parse.Program(src) }

// CaseStudy builds one of the benchmark instances by name: "ba" (Byzantine
// agreement with n non-generals), "bafs" (Byzantine agreement with fail-stop
// faults), "sc" (stabilizing chain of n cells), "ring" (Dijkstra's K-state
// token ring), or "tmr" (triple modular redundancy; n ignored).
func CaseStudy(name string, n int) (*Def, error) { return core.CaseStudy(name, n) }

// CountStates returns the number of states in a state predicate of the
// compiled program (e.g. a Result's Invariant or FaultSpan).
func CountStates(c *Compiled, set bdd.Node) float64 { return c.Space.CountStates(set) }

// CountTransitions returns the number of transitions in a transition
// predicate of the compiled program (e.g. a Result's Trans).
func CountTransitions(c *Compiled, delta bdd.Node) float64 {
	return c.Space.CountTransitions(delta)
}

// Intersects reports whether two predicates of the compiled program share at
// least one assignment. It panics if either Node is not from c's manager:
// Node values are plain indices, so a foreign Node would silently test an
// unrelated predicate.
func Intersects(c *Compiled, a, b bdd.Node) bool {
	c.Space.M.CheckNode(a)
	c.Space.M.CheckNode(b)
	return c.Space.M.And(a, b) != bdd.False
}
