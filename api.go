package repro

import (
	"context"
	"fmt"
	"time"

	"repro/internal/program"
	"repro/internal/repair"
	"repro/internal/verify"
	"repro/internal/witness"
)

// Algorithm selects the repair algorithm used by Repair.
type Algorithm int

// The implemented repair algorithms.
const (
	// LazyAlg is the paper's two-step Algorithm 1: Add-Masking without
	// realizability constraints, then realizability enforcement by removal,
	// iterated until no deadlocks remain. The default.
	LazyAlg Algorithm = iota
	// CautiousAlg is the baseline that keeps the model realizable at every
	// intermediate step (Section IV of the paper).
	CautiousAlg
)

// String returns the algorithm's canonical name ("lazy", "cautious").
func (a Algorithm) String() string {
	switch a {
	case LazyAlg:
		return "lazy"
	case CautiousAlg:
		return "cautious"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// repairConfig is the resolved configuration of one Repair call.
type repairConfig struct {
	alg       Algorithm
	timeout   time.Duration
	witnesses int
	backend   Backend
	opts      repair.Options
}

// Option configures a Repair call.
type Option func(*repairConfig)

// WithAlgorithm selects the repair algorithm (default LazyAlg).
func WithAlgorithm(a Algorithm) Option {
	return func(c *repairConfig) { c.alg = a }
}

// EngineMode names a parallelization mode of the symbolic engine.
type EngineMode string

// The engine modes.
const (
	// EnginePartitioned (the default) is the share-nothing engine: private
	// BDD worker managers, canonical DAG transfer between them, merges on
	// the owning manager.
	EnginePartitioned = EngineMode(program.ModePartitioned)
	// EngineShared is the shared-memory engine: all workers operate on one
	// shared node table with per-worker operation caches; merge barriers
	// double as stop-the-world GC/reordering points. Results are identical
	// to every other mode and worker count.
	EngineShared = EngineMode(program.ModeShared)
)

// EngineConfig consolidates every engine-tuning knob behind one struct: the
// parallelization mode and worker count, the node-lifetime knobs (budget, GC
// cadence, reordering cadence), and the verification backend. The zero value
// of every field selects its default (partitioned mode, GOMAXPROCS workers,
// unbounded nodes, default cadences, BDD backend), so callers set only what
// they mean.
type EngineConfig struct {
	// Mode selects the parallel engine: EnginePartitioned (default) or
	// EngineShared.
	Mode EngineMode
	// Workers is the worker count; below 1 selects GOMAXPROCS, 1 is serial.
	Workers int
	// NodeBudget, when positive, bounds the live BDD node count; a blown
	// budget fails the run with *BudgetError instead of exhausting memory.
	NodeBudget int64
	// GCThreshold overrides the automatic-collection cadence: positive
	// collects after that many allocations, negative disables automatic
	// collection, 0 keeps the default.
	GCThreshold int64
	// Reorder arms dynamic variable reordering with the given allocation
	// cadence; negative disables it, 0 keeps the default.
	Reorder int64
	// Backend routes Verify's reachability checks: BackendBDD (default) or
	// BackendSAT.
	Backend Backend
}

// WithEngine applies a full engine configuration. It is the single
// engine-tuning entry point and it assigns every field, so combine it with
// other options by placing WithEngine first (like WithOptions). The former
// per-knob wrappers (WithWorkers, WithNodeBudget, WithReorder, WithBackend)
// were removed; each one maps to the EngineConfig field of the same name.
func WithEngine(ec EngineConfig) Option {
	return func(c *repairConfig) {
		c.opts.Mode = string(ec.Mode)
		c.opts.Workers = ec.Workers
		c.opts.NodeBudget = ec.NodeBudget
		c.opts.GCThreshold = ec.GCThreshold
		c.opts.Reorder = ec.Reorder
		c.backend = ec.Backend
	}
}

// WithTimeout bounds the synthesis: when the deadline passes, the repair
// aborts at its next fixpoint-iteration boundary with an error wrapping
// context.DeadlineExceeded. Zero or negative means no timeout beyond the
// caller's context.
func WithTimeout(d time.Duration) Option {
	return func(c *repairConfig) { c.timeout = d }
}

// WithLogf directs the synthesis's progress lines to f (see
// Options.Logf for the concurrency contract).
func WithLogf(f func(format string, args ...any)) Option {
	return func(c *repairConfig) { c.opts.Logf = f }
}

// CostModel prices transitions for cost-aware repair; see WithCostModel.
// Default is the weight of transitions no other source prices (values below
// 1 mean 1), and Actions overrides per-action weights by name: a
// "proc.action" key binds one process's action, a bare "action" key binds
// every action with that name. Qualified keys win over bare ones, and both
// win over the .ftr `cost` annotation.
type CostModel = repair.CostModel

// WithCostModel prices the model's transitions and turns on cost-aware
// repair: the synthesis still produces the same verdict (and a program
// passing the same Verify checks), but prefers removing cheap transitions
// when breaking livelocks and thins the synthesized recovery of expensive
// read-restriction groups once converged. The result carries the exact
// weighted counts in Result.AchievedCost (kept recovery transitions) and
// Result.CostRemoved (original transitions deleted); both are identical
// across worker counts and engine modes. Weights come from the model's .ftr
// `cost` annotations, overridden by cm (see CostModel).
func WithCostModel(cm CostModel) Option {
	return func(c *repairConfig) {
		c.opts.Costs = &cm
		c.opts.MinimizeCost = true
	}
}

// WithWitnesses asks for up to n recovery demonstrations in
// Result.Witnesses: certified traces, one per fault action, that leave the
// synthesized invariant via faults and converge back to it via program
// steps. Extraction is deterministic — the same model yields byte-identical
// witness JSON regardless of the worker count. n ≤ 0 (the default) extracts
// nothing.
func WithWitnesses(n int) Option {
	return func(c *repairConfig) { c.witnesses = n }
}

// WithOptions replaces the full low-level Options struct (ablations such as
// disabling the reachability heuristic or deferring cycle-breaking). Options
// set by other With* calls apply on top in their given order, so place
// WithOptions first.
func WithOptions(o Options) Option {
	return func(c *repairConfig) { c.opts = o }
}

// Repair compiles the definition and synthesizes a masking fault-tolerant
// program from it. It is the single entry point of the library: the
// algorithm, worker budget, timeout, and logging are all functional options,
// and the context carries cancellation. With no options it runs the paper's
// headline configuration (lazy repair, reachability heuristic on, GOMAXPROCS
// workers).
func Repair(ctx context.Context, def *Def, opts ...Option) (compiled *Compiled, result *Result, err error) {
	cfg := repairConfig{opts: repair.DefaultOptions()}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}

	c, err := def.Compile()
	if err != nil {
		return nil, nil, err
	}
	eng, err := program.NewEngineMode(c, program.Mode(cfg.opts.Mode), cfg.opts.Workers)
	if err != nil {
		return nil, nil, err
	}
	cfg.opts.ApplyEngine(eng)
	// A blown budget surfaces as a *bdd.BudgetError panic at a collection
	// safe point; Repair is a run boundary, so it converts the panic back
	// into an ordinary error unconditionally — a budget can be armed even
	// when this call didn't set one (WithOptions carrying a budget-bearing
	// Options value, a stressed manager default).
	defer func() {
		if r := recover(); r != nil {
			be, ok := r.(*BudgetError)
			if !ok {
				panic(r)
			}
			compiled, result, err = nil, nil, fmt.Errorf("repro: %w", be)
		}
	}()

	var res *Result
	switch cfg.alg {
	case LazyAlg:
		res, err = repair.LazyEngine(ctx, eng, cfg.opts)
	case CautiousAlg:
		res, err = repair.CautiousEngine(ctx, eng, cfg.opts)
	default:
		return nil, nil, fmt.Errorf("repro: unknown algorithm %v", cfg.alg)
	}
	if err != nil {
		return nil, nil, err
	}
	if cfg.witnesses > 0 {
		demos, werr := witness.RecoveryDemos(ctx, c, res.Trans, res.Invariant, res.FaultSpan, cfg.witnesses)
		if werr != nil {
			return nil, nil, werr
		}
		res.Witnesses = demos
	}
	return c, res, nil
}

// NodeStats reports the node-lifetime counters of a compiled model's BDD
// manager: live and peak-live node counts, collections performed, and nodes
// reclaimed. Useful after Repair to see what the synthesis cost in memory.
func NodeStats(c *Compiled) (live, peak, gcRuns, freed int64) {
	st := c.Space.M.Stats()
	return st.NodesLive, st.PeakLive, st.GCRuns, st.NodesFreed
}

// Verify independently checks a repair result against the paper's
// definitions: the problem-statement conditions of Section II, masking
// fault-tolerance (Definition 15), and realizability (Definitions 19–20).
// It accepts the same functional options as Repair — WithEngine selects the
// worker count and node-lifetime knobs of the checking managers and routes
// the reachability checks through the SAT/BMC engine via its Backend field,
// and WithTimeout bounds the checking. Options that only steer synthesis
// (WithAlgorithm, WithWitnesses, WithCostModel) are accepted and ignored.
func Verify(ctx context.Context, c *Compiled, res *Result, opts ...Option) (report *Report, err error) {
	cfg := repairConfig{opts: repair.DefaultOptions()}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}
	eng, err := program.NewEngineMode(c, program.Mode(cfg.opts.Mode), cfg.opts.Workers)
	if err != nil {
		return nil, err
	}
	cfg.opts.ApplyEngine(eng)
	// Verification is a run boundary of its own: a *bdd.BudgetError panic
	// from c's manager (whose budget may have been armed by the synthesis
	// that produced res, or by this call's options) must come back as an
	// error here, not unwind into the caller.
	defer func() {
		if r := recover(); r != nil {
			be, ok := r.(*BudgetError)
			if !ok {
				panic(r)
			}
			report, err = nil, fmt.Errorf("repro: %w", be)
		}
	}()
	backend, err := verify.ParseBackend(string(cfg.backend))
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	return verify.ResultBackendEngine(ctx, eng, res, backend, false)
}
